// Section 7.4 (Latency Prediction Module): misprediction rates and error
// tails of the online predictor in inference-inference and inference-training
// stacking environments. The paper reports HP misprediction rates of 0.9%
// and 0.38% with P99 errors of 49us and 31us (mispredictions = |error|>50us).
#include "bench/bench_util.h"

using namespace lithos;
using namespace lithos::bench;

int main() {
  PrintHeader("Section 7.4: Latency predictor accuracy",
              "HP misprediction 0.9% / 0.38%; P99 error 49us / 31us");

  Table table({"environment", "predictions", "misprediction rate (%)", "P99 |error| (us)"});

  {
    // Inference-inference: ResNet HP A + BERT HP B + GPT-J BE under LithOS.
    StackingConfig cfg;
    cfg.system = SystemKind::kLithos;
    cfg.warmup = kWarmup;
    cfg.duration = FromSeconds(8);
    AppSpec a = MakeHpApp("ResNet", AppRole::kHpLatency);
    AppSpec b = MakeHpApp("BERT", AppRole::kHpThroughput);
    AppSpec c = MakeBeInferenceApp("GPT-J");
    AssignInferenceOnlyQuotas(SystemKind::kLithos, cfg.spec, &a, &b, &c);
    const StackingResult r = RunStacking(cfg, {a, b, c});
    table.AddRow({"inference-inference", std::to_string(r.predictor_predictions),
                  Table::Num(100 * r.predictor_mispred_rate, 2),
                  Table::Num(r.predictor_err_p99_us, 1)});
  }
  {
    // Inference-training: BERT HP + ResNet training BE under LithOS.
    StackingConfig cfg;
    cfg.system = SystemKind::kLithos;
    cfg.warmup = kWarmup;
    cfg.duration = FromSeconds(8);
    AppSpec hp = MakeHpApp("BERT", AppRole::kHpLatency, HybridLoadRps("BERT"));
    AppSpec be = MakeBeTrainingApp("ResNet");
    AssignHybridQuotas(SystemKind::kLithos, cfg.spec, &hp, &be);
    const StackingResult r = RunStacking(cfg, {hp, be});
    table.AddRow({"inference-training", std::to_string(r.predictor_predictions),
                  Table::Num(100 * r.predictor_mispred_rate, 2),
                  Table::Num(r.predictor_err_p99_us, 1)});
  }
  table.Print();
  std::printf("\n[paper: HP rates 0.9%% / 0.38%%, BE rates 14%% / 11%%; P99 49us / 31us.\n");
  std::printf(" Our accounting pools HP and BE predictions per environment.]\n");
  return 0;
}
