// Figure 6: normalized model size distribution — more than 10x between the
// largest and smallest production models, with small and large models both
// heavily used.
#include "bench/bench_util.h"
#include "src/workloads/fleet.h"

using namespace lithos;

int main() {
  bench::PrintHeader("Figure 6: Model size distribution",
                     "Fig. 6 — >10x size spread; smallest model B used as much as larger E, G");

  FleetTelemetry fleet(2026);
  Table table({"model", "normalized size", "popularity rank"});
  int rank = 1;
  for (const FleetModel& m : fleet.models()) {
    table.AddRow({m.id, Table::Num(m.size, 1), std::to_string(rank++)});
  }
  table.Print();
  std::printf("\nsize spread = %.1fx   [paper: >10x]\n", fleet.SizeSpread());
  return 0;
}
