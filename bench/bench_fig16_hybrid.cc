// Figure 16: hybrid inference/training multitenancy — P99 service latency
// (normalised to solo) and aggregate throughput (HP normalised to load + BE
// normalised to solo training), for every HP inference model, averaged over
// all six BE training models, under all nine systems.
//
// The (HP x BE x system) grid runs through SweepRunner; aggregation walks
// the collected results in declaration order so the tables are byte-identical
// for any --jobs.
#include <map>

#include "bench/bench_util.h"

using namespace lithos;
using namespace lithos::bench;

int main(int argc, char** argv) {
  PrintHeader("Figure 16: Hybrid inference/training multitenancy",
              "Fig. 16 — (a) P99 latency vs ideal, (b) aggregate throughput");

  const BenchOptions opts = ParseBenchOptions(argc, argv);
  NoteTraceUnsupported(opts, "bench_fig16_hybrid");
  SweepRunner runner(opts.jobs);
  SoloCache solos;
  const GpuSpec spec = GpuSpec::A100();

  struct Cell {
    StreamingStats latency_x;  // P99 / solo P99
    StreamingStats hp_thr;     // throughput / load
    StreamingStats be_thr;     // iterations / solo iterations
  };
  std::map<SystemKind, std::map<std::string, Cell>> grid;

  const auto hp_models = HybridHpModels();
  const auto be_jobs = TrainingJobs();
  std::printf("running %zu HP x %zu BE x %zu systems...\n", hp_models.size(), be_jobs.size(),
              AllSystems().size());

  std::vector<AppSpec> solo_specs;
  for (const std::string& hp_model : hp_models) {
    solo_specs.push_back(MakeHpApp(hp_model, AppRole::kHpLatency, HybridLoadRps(hp_model)));
  }
  for (const TrainingJobSpec& job : be_jobs) {
    solo_specs.push_back(MakeBeTrainingApp(job.model));
  }
  solos.Prefetch(runner, solo_specs);

  std::vector<SweepPoint<StackingResult>> points;
  for (const std::string& hp_model : hp_models) {
    const AppSpec hp = MakeHpApp(hp_model, AppRole::kHpLatency, HybridLoadRps(hp_model));
    for (const TrainingJobSpec& job : be_jobs) {
      const AppSpec be = MakeBeTrainingApp(job.model);
      for (SystemKind system : AllSystems()) {
        StackingConfig cfg;
        cfg.system = system;
        cfg.warmup = kWarmup;
        cfg.duration = FromSeconds(6);
        AppSpec h = hp, b = be;
        AssignHybridQuotas(system, spec, &h, &b);
        points.push_back({hp_model + "+" + job.model + "/" + SystemName(system),
                          [cfg, h, b] { return RunStacking(cfg, {h, b}); }});
      }
    }
  }
  const std::vector<StackingResult> results = runner.Run(points);

  size_t idx = 0;
  for (const std::string& hp_model : hp_models) {
    const AppSpec hp = MakeHpApp(hp_model, AppRole::kHpLatency, HybridLoadRps(hp_model));
    const AppResult& solo_hp = solos.Get(hp);
    for (const TrainingJobSpec& job : be_jobs) {
      const AppResult& solo_be = solos.Get(MakeBeTrainingApp(job.model));
      for (SystemKind system : AllSystems()) {
        const StackingResult& r = results[idx++];
        Cell& cell = grid[system][hp_model];
        cell.latency_x.Add(r.apps[0].p99_ms / std::max(1e-9, solo_hp.p99_ms));
        cell.hp_thr.Add(r.apps[0].throughput_rps / hp.load_rps);
        cell.be_thr.Add(r.apps[1].iterations_per_s /
                        std::max(1e-9, solo_be.iterations_per_s));
      }
    }
  }

  // --- Fig. 16(a): P99 latency, normalised to solo -----------------------------
  std::printf("\nFigure 16(a): HP P99 latency (x ideal), averaged over training models\n");
  std::vector<std::string> header = {"system"};
  for (const std::string& m : hp_models) {
    header.push_back(m);
  }
  header.push_back("mean");
  Table f16a(header);
  std::map<SystemKind, double> mean_lat;
  for (SystemKind system : AllSystems()) {
    std::vector<std::string> row = {SystemName(system)};
    double total = 0;
    for (const std::string& m : hp_models) {
      const double v = grid[system][m].latency_x.mean();
      row.push_back(Table::Num(v, 2));
      total += v;
    }
    mean_lat[system] = total / hp_models.size();
    row.push_back(Table::Num(mean_lat[system], 2));
    f16a.AddRow(row);
  }
  f16a.Print();

  // --- Fig. 16(b): aggregate throughput ---------------------------------------
  std::printf("\nFigure 16(b): aggregate throughput (HP/load + BE/solo)\n");
  std::vector<std::string> header_b = {"system"};
  for (const std::string& m : hp_models) {
    header_b.push_back(m);
  }
  header_b.push_back("mean");
  Table f16b(header_b);
  std::map<SystemKind, double> mean_agg;
  for (SystemKind system : AllSystems()) {
    std::vector<std::string> row = {SystemName(system)};
    double total = 0;
    for (const std::string& m : hp_models) {
      const Cell& cell = grid[system][m];
      const double v = cell.hp_thr.mean() + cell.be_thr.mean();
      row.push_back(Table::Num(v, 2));
      total += v;
    }
    mean_agg[system] = total / hp_models.size();
    row.push_back(Table::Num(mean_agg[system], 2));
    f16b.AddRow(row);
  }
  f16b.Print();

  std::printf("\nHeadline (paper values in brackets):\n");
  std::printf("  MPS latency vs ideal     : %.2fx  [5.83x]\n", mean_lat[SystemKind::kMps]);
  std::printf("  Priority latency         : %.2fx  [2.89x]\n", mean_lat[SystemKind::kPriority]);
  std::printf("  REEF latency             : %.2fx  [2.89x, up to 8.93x]\n",
              mean_lat[SystemKind::kReef]);
  std::printf("  TGS latency              : %.2fx  [1.41x]\n", mean_lat[SystemKind::kTgs]);
  std::printf("  LithOS latency           : %.2fx  [1.19x, within 20%% of ideal]\n",
              mean_lat[SystemKind::kLithos]);
  std::printf("  LithOS/TGS latency ratio : %.2fx  [1.18x]\n",
              mean_lat[SystemKind::kTgs] / mean_lat[SystemKind::kLithos]);
  std::printf("  MPS/LithOS latency ratio : %.2fx  [4.7x avg, up to 13.54x]\n",
              mean_lat[SystemKind::kMps] / mean_lat[SystemKind::kLithos]);
  std::printf("  LithOS aggregate / TGS   : %.2fx  [1.35x]\n",
              mean_agg[SystemKind::kLithos] / mean_agg[SystemKind::kTgs]);

  JsonEmitter json("fig16_hybrid");
  json.SetRun(runner.jobs(), runner.wall_seconds());
  for (SystemKind system : AllSystems()) {
    const std::string prefix = SystemName(system) + "_";
    json.Metric(prefix + "latency_x_ideal", mean_lat[system]);
    json.Metric(prefix + "aggregate_throughput", mean_agg[system]);
  }
  json.Metric("mps_over_lithos_latency",
              mean_lat[SystemKind::kMps] / mean_lat[SystemKind::kLithos]);
  json.Metric("lithos_over_tgs_aggregate",
              mean_agg[SystemKind::kLithos] / mean_agg[SystemKind::kTgs]);
  json.WallMetric("sweep_wall_seconds", runner.wall_seconds());
  json.Write();
  runner.PrintSummary("fig16_hybrid");
  return 0;
}
