// Cluster serving: the fleet-scale consolidation experiment motivated by the
// production study of Section 3. Thirteen models with a several-hundred-x
// popularity spread and diurnal traffic (Figs. 1, 4-6) are served by a pool
// of per-GPU LithOS stacks behind a placement policy. Two sweeps:
//
//   1. Rightsizing the pool: for each policy, the smallest node count whose
//      p99 stays under the SLO — GPUs needed falls as the policy improves
//      from round-robin to least-loaded to model-affinity.
//   2. Consolidation at fixed pool size: versus the dedicated one-GPU-per-
//      model deployment (13 GPUs at 27% mean utilization in the paper),
//      model-affinity packs the cold tail and frees whole GPUs.
//
// All three tables render from one (policy x pool-size) SweepRunner grid:
// every run is a pure function of its config, so the serial early-exit
// search ("stop at the first pool meeting the SLO") is replayed over the
// collected results without changing a byte of output.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cluster/cluster.h"
#include "src/common/table.h"

using namespace lithos;

namespace {

constexpr double kSloMs = 45.0;       // p99 target for the rightsizing sweep
constexpr int kDedicatedGpus = 13;    // one GPU per fleet model

ClusterConfig BaseConfig(PlacementPolicy policy, int num_nodes) {
  ClusterConfig config;
  config.policy = policy;
  config.num_nodes = num_nodes;
  config.system = SystemKind::kLithos;
  config.aggregate_rps = 700.0;
  config.seconds_per_day = 6.0;       // one compressed diurnal cycle per run
  config.warmup = FromSeconds(1);
  config.duration = FromSeconds(6);
  config.seed = 2026;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Cluster serving: placement policy vs fleet utilization and GPU count",
      "Section 3 (Figs. 1, 4-6) — consolidating the 13-model fleet onto shared GPUs");

  const bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::NoteTraceUnsupported(opts, "bench_cluster_serving");
  SweepRunner runner(opts.jobs);
  bench::JsonEmitter json("cluster_serving");

  // The full (policy x 1..13 nodes) grid; the serial bench explored a
  // policy-dependent prefix of it, so running it all stays byte-identical
  // while giving the pool enough independent points to chew on.
  const auto policies = AllPlacementPolicies();
  std::vector<SweepPoint<ClusterResult>> points;
  for (PlacementPolicy policy : policies) {
    for (int n = 1; n <= kDedicatedGpus; ++n) {
      points.push_back({PlacementPolicyName(policy) + "/" + std::to_string(n),
                        [policy, n] { return RunClusterServing(BaseConfig(policy, n)); }});
    }
  }
  const std::vector<ClusterResult> results = runner.Run(points);
  const auto at = [&](size_t policy_idx, int n) -> const ClusterResult& {
    return results[policy_idx * kDedicatedGpus + (n - 1)];
  };

  // --- Sweep 1: smallest pool meeting the SLO per policy --------------------
  std::printf("\nPool rightsizing: min nodes with p99 <= %.0f ms (diurnal traffic, %.0f rps)\n",
              kSloMs, BaseConfig(PlacementPolicy::kRoundRobin, 1).aggregate_rps);
  Table sizing({"policy", "GPUs needed", "GPUs used", "goodput util%", "busy util%", "p99 ms",
                "switches/s", "saved vs 13"});
  for (size_t p = 0; p < policies.size(); ++p) {
    const PlacementPolicy policy = policies[p];
    ClusterResult best;
    bool met = false;
    for (int n = 1; n <= kDedicatedGpus; ++n) {
      const ClusterResult& r = at(p, n);
      if (r.p99_ms <= kSloMs && r.completed > 0) {
        best = r;
        met = true;
        break;
      }
      best = r;  // keep the largest-pool attempt for reporting if never met
    }
    sizing.AddRow({PlacementPolicyName(policy),
                   met ? std::to_string(best.num_nodes) : ">" + std::to_string(kDedicatedGpus),
                   std::to_string(best.nodes_used),
                   Table::Num(100 * best.goodput_utilization, 1),
                   Table::Num(100 * best.used_utilization, 1), Table::Num(best.p99_ms, 1),
                   Table::Num(static_cast<double>(best.total_model_switches) /
                                  ToSeconds(BaseConfig(policy, 1).duration),
                              0),
                   std::to_string(kDedicatedGpus - best.nodes_used)});
    const std::string prefix = PlacementPolicyName(policy) + "_";
    json.Metric(prefix + "gpus_needed", met ? best.num_nodes : kDedicatedGpus + 1);
    json.Metric(prefix + "p99_ms", best.p99_ms);
    json.Metric(prefix + "goodput_utilization", best.goodput_utilization);
  }
  sizing.Print();

  // --- Sweep 2: consolidation at the dedicated-deployment pool size ---------
  std::printf("\nConsolidation at a fixed %d-node pool (the dedicated deployment's size)\n",
              kDedicatedGpus);
  Table fixed({"policy", "GPUs used", "goodput util%", "used util%", "p99 ms", "models/GPU",
               "GPUs saved"});
  for (size_t p = 0; p < policies.size(); ++p) {
    const ClusterResult& r = at(p, kDedicatedGpus);
    fixed.AddRow({PlacementPolicyName(policies[p]), std::to_string(r.nodes_used),
                  Table::Num(100 * r.goodput_utilization, 1),
                  Table::Num(100 * r.used_utilization, 1), Table::Num(r.p99_ms, 1),
                  Table::Num(r.mean_models_per_node, 1),
                  std::to_string(r.gpus_saved_vs_dedicated)});
    json.Metric(PlacementPolicyName(policies[p]) + "_gpus_saved_at_13",
                r.gpus_saved_vs_dedicated);
  }
  fixed.Print();

  // --- Sweep 3: node-count scaling under the best policy --------------------
  std::printf("\nNode-count sweep under model-affinity (p99 and utilization vs pool size)\n");
  Table scaling({"nodes", "p99 ms", "mean ms", "fleet util%", "throughput rps"});
  const size_t affinity_idx =
      std::find(policies.begin(), policies.end(), PlacementPolicy::kModelAffinity) -
      policies.begin();
  for (int n = 2; n <= kDedicatedGpus; n += 2) {
    const ClusterResult& r = at(affinity_idx, n);
    scaling.AddRow({std::to_string(n), Table::Num(r.p99_ms, 1), Table::Num(r.mean_ms, 2),
                    Table::Num(100 * r.fleet_utilization, 1), Table::Num(r.throughput_rps, 0)});
  }
  scaling.Print();

  json.SetRun(runner.jobs(), runner.wall_seconds());
  json.WallMetric("sweep_wall_seconds", runner.wall_seconds());
  json.Write();
  runner.PrintSummary("cluster_serving");
  return 0;
}
