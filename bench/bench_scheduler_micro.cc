// Microbenchmarks (google-benchmark) of the LithOS mechanisms' hot paths:
// TPC acquisition/release, atom planning, predictor lookups, and the
// execution engine's event throughput. These bound the CPU-side overhead a
// real interposition layer would add per kernel launch.
#include <benchmark/benchmark.h>

#include "src/core/kernel_atomizer.h"
#include "src/core/latency_predictor.h"
#include "src/core/tpc_scheduler.h"
#include "src/gpu/execution_engine.h"
#include "src/sim/simulator.h"

namespace lithos {
namespace {

void BM_TpcAcquireRelease(benchmark::State& state) {
  const GpuSpec spec = GpuSpec::A100();
  LithosConfig cfg;
  TpcScheduler sched(spec, cfg);
  sched.RegisterClient(1, PriorityClass::kHighPriority, 40);
  sched.RegisterClient(2, PriorityClass::kBestEffort, 0);
  TimeNs now = 0;
  for (auto _ : state) {
    const TpcMask mask = sched.Acquire(1, static_cast<int>(state.range(0)), now, FromMillis(1));
    sched.Release(mask, now);
    ++now;
  }
}
BENCHMARK(BM_TpcAcquireRelease)->Arg(8)->Arg(32)->Arg(54);

void BM_AtomizerPlan(benchmark::State& state) {
  const GpuSpec spec = GpuSpec::A100();
  LithosConfig cfg;
  KernelAtomizer atomizer(cfg);
  KernelDesc k = MakeKernel("k", static_cast<uint32_t>(state.range(0)), FromMillis(20), 0.95,
                            0.8, spec, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atomizer.Plan(k, FromMillis(20), 11, spec));
  }
}
BENCHMARK(BM_AtomizerPlan)->Arg(1000)->Arg(100000);

void BM_PredictorPredict(benchmark::State& state) {
  const GpuSpec spec = GpuSpec::A100();
  LithosConfig cfg;
  LatencyPredictor predictor(spec, cfg);
  const OperatorKey key{1, 3, 0xfeed};
  for (int t : {1, 13, 27, 40, 54}) {
    ExecConditions c;
    c.tpcs = t;
    c.freq_mhz = spec.max_mhz;
    predictor.Record(key, c, FromMillis(10) / t + FromMicros(100));
  }
  ExecConditions c;
  c.tpcs = 20;
  c.freq_mhz = spec.max_mhz;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.Predict(key, c));
  }
}
BENCHMARK(BM_PredictorPredict);

void BM_PredictorRecord(benchmark::State& state) {
  const GpuSpec spec = GpuSpec::A100();
  LithosConfig cfg;
  LatencyPredictor predictor(spec, cfg);
  ExecConditions c;
  c.tpcs = 27;
  c.freq_mhz = spec.max_mhz;
  uint32_t ordinal = 0;
  for (auto _ : state) {
    predictor.Record(OperatorKey{1, ordinal++ % 256, 0xbeef}, c, FromMicros(300),
                     FromMicros(310));
  }
}
BENCHMARK(BM_PredictorRecord);

void BM_EngineKernelChurn(benchmark::State& state) {
  // Launch->complete cycles through the simulator: the per-kernel cost of the
  // whole substrate.
  Simulator sim;
  const GpuSpec spec = GpuSpec::A100();
  ExecutionEngine engine(&sim, spec);
  KernelDesc k = MakeKernel("k", 4096, FromMicros(100), 0.9, 0.5, spec);
  for (auto _ : state) {
    WorkItem item;
    item.kernel = &k;
    item.client_id = 1;
    engine.Launch(std::move(item), spec.AllTpcs());
    sim.RunToCompletion();
  }
}
BENCHMARK(BM_EngineKernelChurn);

void BM_SimulatorEventLoop(benchmark::State& state) {
  Simulator sim;
  for (auto _ : state) {
    sim.ScheduleAfter(1, [] {});
    sim.Step();
  }
}
BENCHMARK(BM_SimulatorEventLoop);

}  // namespace
}  // namespace lithos

BENCHMARK_MAIN();
