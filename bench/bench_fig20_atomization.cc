// Figure 20: P95 latency of an HP BERT inference service collocated with
// (a) BE VGG training at growing batch sizes and (b) BE Llama 3 inference at
// growing prompt sequence lengths — REEF vs LithOS without Kernel
// Atomization vs full LithOS. Kernel durations grow with batch/seqlen, so
// this isolates the HoL-blocking effect atomization removes.
#include "bench/bench_util.h"
#include "src/workloads/zoo.h"

using namespace lithos;
using namespace lithos::bench;

namespace {

struct SystemVariant {
  std::string name;
  SystemKind kind;
  bool atomization;
};

const std::vector<SystemVariant> kVariants = {
    {"REEF", SystemKind::kReef, false},
    {"LithOS (w/o Kernel Atomization)", SystemKind::kLithos, false},
    {"LithOS", SystemKind::kLithos, true},
};

}  // namespace

int main() {
  PrintHeader("Figure 20: P95 HP latency vs BE batch size / prompt length",
              "Fig. 20 — LithOS beats REEF 6.5x / 3.9x; atomization adds 2x / 1.3x");

  AppSpec hp = MakeHpApp("BERT", AppRole::kHpLatency, HybridLoadRps("BERT"));
  SoloCache solos;
  const double solo_p95 = solos.Get(hp).p95_ms;
  std::printf("HP BERT solo P95 = %.2f ms\n", solo_p95);

  // --- (a) BE VGG training, growing batch size --------------------------------
  std::printf("\n(a) BE = VGG training, sweeping batch size\n");
  Table a({"BE batch", "REEF", "LithOS w/o KA", "LithOS", "(P95 ms)"});
  for (int batch : {32, 64, 128, 192, 256, 320}) {
    AppSpec be;
    be.role = AppRole::kBeTraining;
    be.model = "VGG";
    // Override the profile batch through a custom spec: the harness builds
    // VGG at its Table 1 batch, so emulate by scaling with a custom app.
    std::vector<std::string> row = {std::to_string(batch)};
    for (const SystemVariant& v : kVariants) {
      StackingConfig cfg;
      cfg.system = v.kind;
      cfg.lithos.enable_atomization = v.atomization;
      cfg.warmup = kWarmup;
      cfg.duration = FromSeconds(6);
      AppSpec h = hp, b = be;
      AssignHybridQuotas(cfg.system, GpuSpec::A100(), &h, &b);

      // Build the stack manually to use the custom VGG batch.
      Simulator sim;
      ExecutionEngine engine(&sim, cfg.spec);
      Driver driver(&sim, &engine);
      auto backend = MakeBackend(cfg.system, &sim, &engine, cfg.lithos);
      driver.SetBackend(backend.get());
      Client* hp_client = driver.CuCtxCreate("hp", PriorityClass::kHighPriority, h.quota_tpcs);
      Client* be_client = driver.CuCtxCreate("be", PriorityClass::kBestEffort, b.quota_tpcs);

      RequestRecorder rec;
      rec.SetWarmupEnd(cfg.warmup);
      auto factory = [&](int n) { return MakeBertLargeInference(cfg.spec, n); };
      BatchingInferenceServer server(&driver, hp_client, factory, h.max_batch, h.batch_delay,
                                     &rec);
      PoissonArrivals arrivals(&sim, h.load_rps, 7, [&server] { server.Submit(); });
      arrivals.Start(cfg.warmup + cfg.duration);
      ClosedLoopRunner runner(&driver, be_client, MakeVgg19Training(cfg.spec, batch));
      runner.Start();
      sim.RunUntil(cfg.warmup + cfg.duration);
      runner.Stop();
      rec.Finalize();
      row.push_back(Table::Num(rec.latency_ms().P95(), 2));
    }
    a.AddRow(row);
  }
  a.Print();

  // --- (b) BE Llama 3 inference, growing prompt length -------------------------
  std::printf("\n(b) BE = Llama 3 inference, sweeping prompt sequence length\n");
  Table bt({"BE seqlen", "REEF", "LithOS w/o KA", "LithOS", "(P95 ms)"});
  for (int seqlen : {64, 128, 256, 384, 512}) {
    std::vector<std::string> row = {std::to_string(seqlen)};
    for (const SystemVariant& v : kVariants) {
      StackingConfig cfg;
      cfg.system = v.kind;
      cfg.lithos.enable_atomization = v.atomization;
      cfg.warmup = kWarmup;
      cfg.duration = FromSeconds(6);
      AppSpec h = hp;
      AppSpec b;
      b.role = AppRole::kBeInference;
      b.model = "Llama 3";
      AssignHybridQuotas(cfg.system, GpuSpec::A100(), &h, &b);

      Simulator sim;
      ExecutionEngine engine(&sim, cfg.spec);
      Driver driver(&sim, &engine);
      auto backend = MakeBackend(cfg.system, &sim, &engine, cfg.lithos);
      driver.SetBackend(backend.get());
      Client* hp_client = driver.CuCtxCreate("hp", PriorityClass::kHighPriority, h.quota_tpcs);
      Client* be_client = driver.CuCtxCreate("be", PriorityClass::kBestEffort, b.quota_tpcs);

      RequestRecorder rec;
      rec.SetWarmupEnd(cfg.warmup);
      auto factory = [&](int n) { return MakeBertLargeInference(cfg.spec, n); };
      BatchingInferenceServer server(&driver, hp_client, factory, h.max_batch, h.batch_delay,
                                     &rec);
      PoissonArrivals arrivals(&sim, h.load_rps, 7, [&server] { server.Submit(); });
      arrivals.Start(cfg.warmup + cfg.duration);
      // BE: big-prefill Llama requests in a closed loop (prefill kernels grow
      // with seqlen — the HoL source).
      ClosedLoopRunner runner(&driver, be_client,
                              MakeLlama3Inference(cfg.spec, seqlen, 16));
      runner.Start();
      sim.RunUntil(cfg.warmup + cfg.duration);
      runner.Stop();
      rec.Finalize();
      row.push_back(Table::Num(rec.latency_ms().P95(), 2));
    }
    bt.AddRow(row);
  }
  bt.Print();
  std::printf("\n[paper: LithOS beats REEF by 6.5x (a) and 3.9x (b) at the largest sizes;\n");
  std::printf(" atomization contributes 2x and 1.3x; LithOS stays within 14%%/7%% of ideal]\n");
  return 0;
}
