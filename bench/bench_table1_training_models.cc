// Table 1: training model parameters — memory footprint, batch size, and
// iteration latency, measured by running each training job alone on the
// simulated A100 and timing iterations end to end.
#include "bench/bench_util.h"

using namespace lithos;

int main() {
  bench::PrintHeader("Table 1: Training model parameters",
                     "Table 1 — memory (GiB), batch size, iteration latency (ms)");

  const GpuSpec spec = GpuSpec::A100();
  Table table({"Model", "Mem. (GiB)", "Batch Size", "Latency (ms)", "[paper ms]", "kernels"});
  for (const TrainingJobSpec& job : TrainingJobs()) {
    const ModelProfileRef profile = MakeTrainingByName(job.model, spec);

    // Measure an iteration end-to-end through the full stack.
    AppSpec app = bench::MakeBeTrainingApp(job.model);
    app.quota_tpcs = spec.TotalTpcs();
    const AppResult solo = RunSolo(app, spec, FromSeconds(6));
    const double measured_ms =
        solo.iteration_p50_ms > 0 ? solo.iteration_p50_ms
                                  : ToMillis(profile->IdealLatencyNs(spec));

    table.AddRow({job.model, Table::Num(profile->memory_gib, 1), std::to_string(job.batch),
                  Table::Num(measured_ms, 0), Table::Num(ToMillis(job.iteration), 0),
                  std::to_string(profile->ops.size())});
  }
  table.Print();
  return 0;
}
