// Self-healing control plane scored against dispatch-only resilience — the
// detector-driven remediation bench (ISSUE 10).
//
// The same 1024-node fleet as bench_fleet_detect runs each fault scenario in
// two arms: "base" (PR 8's resilient dispatch + online detector, no
// actions) and "remedy" (a RemediationController subscribed to the
// detector's verdicts, issuing quarantine / drain + re-spread / forced
// restart through the control plane under the blast-radius governor, plus
// load-aware post-recovery rebalancing). Scenarios:
//
//   * stragglers     — Poisson straggler onsets (DVFS slowdown); remediation
//                      quarantines them out of the attempt rotation
//   * heal_herd      — a zone outage healing inside the window: recovery
//                      re-homes the zone's replicas onto survivors and the
//                      repaired nodes rejoin empty, so the remediation
//                      controller must force rebalance passes to re-spread
//                      the herd (the ROADMAP open item)
//   * false_positive — healthy fleet, synthetic straggler verdicts injected
//                      into the remediation queue: every action must roll
//                      back (quarantine -> clean probation -> demotion)
//   * storm          — 2x straggler rate at a deeper slowdown: verdict scores
//                      clear the drain rung, so the governor's zone/fleet
//                      caps bind and excess actions defer
//   * healthy        — no faults: the controller must do exactly nothing
//
// Headline targets (ISSUE 10): remedy arm goodput >= base arm in the during
// and post phases of stragglers and heal_herd; zero actions in healthy;
// concurrent drains never exceed the governor caps; 100% of injected false
// positives rolled back. Stdout and --trace bytes are identical across runs
// and --jobs (CI cmps).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/fault/scenario.h"

using namespace lithos;

namespace {

constexpr int kNodes = 1024;
constexpr int kZones = 8;
constexpr int kRacksPerZone = 4;  // 32-node racks
// Same operating point as bench_cluster_resilience, the PR 8 baseline the
// remedy arm is scored against. Under model-affinity placement a hot
// model's requests queue on its replica set, so a straggler inside that set
// shapes the fleet tail even though aggregate utilization is moderate.
constexpr double kRps = 24000.0;

// Measurement phases (seconds); faults land in [2, 5).
constexpr double kPreBegin = 1.0;
constexpr double kFaultBegin = 2.0;
constexpr double kFaultEnd = 5.0;
constexpr double kPostEnd = 6.5;

ResilienceConfig FullPolicy() {
  ResilienceConfig rc;
  rc.enabled = true;
  rc.max_attempts = 3;
  rc.attempt_timeout = FromMillis(250);
  rc.backoff_base = FromMillis(20);
  rc.backoff_cap = FromMillis(160);
  rc.hedge = true;
  rc.hedge_delay = FromMillis(75);
  rc.shed_watermark_ms = 60.0;
  return rc;
}

struct GridPoint {
  std::string name;      // scenario_arm
  std::string scenario;
  bool remediate = false;
};

FaultScenarioConfig Faults(const std::string& scenario) {
  FaultScenarioConfig faults;
  faults.name = scenario;
  faults.seed = 7;
  if (scenario == "stragglers") {
    // Onset rate covers the affinity skew: only stragglers on busy replica
    // nodes complete enough work per window to be judged, so enough onsets
    // must land for some to hit hot nodes.
    faults.stragglers_per_second = 10.0;
    faults.straggler_slowdown = 0.15;  // ~6.7x: clears the noise band, still judged
    faults.straggler_duration = FromMillis(2500);
  } else if (scenario == "heal_herd") {
    // A full zone outage: recovery re-homes the zone's replicas onto the
    // seven surviving zones, and when the repaired nodes rejoin at ~3.6s
    // they come back empty — the survivors keep carrying everything until
    // placement is re-spread. That post-recovery herd is what the
    // remediation controller's forced rebalance exists for.
    faults.zone_outages = {
        {/*zone=*/2, FromSeconds(kFaultBegin) + FromMillis(100), FromMillis(1500)}};
  } else if (scenario == "storm") {
    faults.stragglers_per_second = 24.0;
    faults.straggler_slowdown = 0.12;  // ~8x at a storm rate: caps must bind
    faults.straggler_duration = FromMillis(2500);
  }
  // false_positive and healthy inject no faults.
  return faults;
}

RemediationConfig Remediation(const std::string& scenario) {
  RemediationConfig rc;
  rc.drain_score = 3.0;  // the deepest stragglers skip straight to a drain
  if (scenario == "storm") {
    // Tight blast-radius caps: the storm's concurrent drain demand exceeds
    // them, so excess actions visibly defer instead of draining at once.
    rc.max_drains_fleet = 2;
  }
  if (scenario == "false_positive") {
    // Six synthetic verdicts on healthy nodes across distinct zones, scores
    // below the drain rung: each must quarantine, ride out a clean
    // probation, and roll back.
    const int nodes[6] = {10, 150, 290, 430, 570, 710};
    for (int i = 0; i < 6; ++i) {
      RemediationConfig::InjectedVerdict inj;
      inj.at = FromSeconds(2.2) + i * FromMillis(100);
      inj.node = nodes[i];
      inj.score = 1.5;
      rc.inject.push_back(inj);
    }
  }
  return rc;
}

FleetFaultConfig BaseConfig(const GridPoint& point) {
  FleetFaultConfig config;
  config.cluster.num_nodes = kNodes;
  config.cluster.num_zones = kZones;
  config.cluster.racks_per_zone = kRacksPerZone;
  // Model affinity (like bench_cluster_resilience): replica sets are real,
  // so crash recovery concentrates placement on survivors and drains /
  // forced rebalances actually move replicas. Round-robin placement would
  // make re-spread a no-op and hide the herd entirely.
  config.cluster.policy = PlacementPolicy::kModelAffinity;
  config.cluster.system = SystemKind::kMps;
  config.cluster.aggregate_rps = kRps;
  config.cluster.seed = 2026;
  config.cluster.resilience = FullPolicy();
  config.scaling = ScalingPolicyKind::kStaticPeak;
  config.max_migrations_per_period = 8;
  config.phases = {{"pre", FromSeconds(kPreBegin), FromSeconds(kFaultBegin)},
                   {"during", FromSeconds(kFaultBegin), FromSeconds(kFaultEnd)},
                   {"post", FromSeconds(kFaultEnd), FromSeconds(kPostEnd)}};
  // Both arms run the detector so the only delta is the remediation actions.
  config.detect = true;
  config.detector.window = config.control_period;
  // Recalibrated for model-affinity placement: hot-replica queueing spreads
  // the healthy latency-ratio distribution to ~2.6x, so the straggler bar
  // moves above that noise — the injected 6-8x slowdowns still clear it.
  config.detector.straggler_inflation = 2.8;
  // The first judged windows carry immature EWMA baselines at this load;
  // two extra warmup windows keep them out of the verdict stream.
  config.detector.warmup_windows = 4;
  config.faults = Faults(point.scenario);
  config.remediate = point.remediate;
  if (point.remediate) {
    config.remediation = Remediation(point.scenario);
  }
  return config;
}

double PhaseGoodput(const FleetFaultResult& r, const std::string& phase) {
  for (const FaultPhaseStats& stats : r.phases) {
    if (stats.name == phase) {
      return stats.goodput_ms_per_s;
    }
  }
  return 0;
}

double PhaseP99(const FleetFaultResult& r, const std::string& phase) {
  for (const FaultPhaseStats& stats : r.phases) {
    if (stats.name == phase) {
      return stats.p99_ms;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::PrintHeader(
      "Self-healing control plane: detector-driven remediation",
      "ISSUE 10 remediation loop; remedy arm vs dispatch-only resilience");

  const bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  SweepRunner runner(opts.jobs);
  bench::JsonEmitter json("fleet_remediate");

  // --trace records the heal_herd remedy point: control-layer records show
  // the full action lifecycle (verdict -> quarantine/drain -> rollback,
  // kinds 70..76) interleaved with the controller's scaling records.
  TraceRecorder trace(static_cast<size_t>(opts.trace_limit));
  trace.SetLayerMask(TraceRecorder::LayerBit(TraceLayer::kCluster) |
                     TraceRecorder::LayerBit(TraceLayer::kControl) |
                     TraceRecorder::LayerBit(TraceLayer::kFault));
  bench::ApplyTraceMask(trace, opts);
  TraceRecorder* recorder = opts.trace_path.empty() ? nullptr : &trace;

  std::vector<GridPoint> grid = {
      {"stragglers_base", "stragglers", false},
      {"stragglers_remedy", "stragglers", true},
      {"heal_herd_base", "heal_herd", false},
      {"heal_herd_remedy", "heal_herd", true},
      {"false_positive", "false_positive", true},
      {"storm", "storm", true},
      {"healthy", "healthy", true},
  };
  grid.erase(std::remove_if(grid.begin(), grid.end(),
                            [&opts](const GridPoint& g) {
                              return !bench::ScenarioSelected(opts, g.name);
                            }),
             grid.end());
  if (grid.empty()) {
    std::fprintf(stderr, "error: --scenario '%s' matches no grid point\n",
                 opts.scenario.c_str());
    return 1;
  }

  std::vector<SweepPoint<FleetFaultResult>> points;
  for (const GridPoint& point : grid) {
    TraceRecorder* point_trace =
        point.name == "heal_herd_remedy" ? recorder : nullptr;
    const long long fault_seed = opts.fault_seed;
    points.push_back({point.name, [point, point_trace, fault_seed] {
                        FleetFaultConfig config = BaseConfig(point);
                        if (fault_seed >= 0) {
                          config.faults.seed = static_cast<uint64_t>(fault_seed);
                        }
                        config.trace = point_trace;
                        return RunFleetFaultScenario(config);
                      }});
  }
  const std::vector<FleetFaultResult> results = runner.Run(points);

  std::printf("\n%d nodes, %d zones x %d racks, %.0f rps; faults in [%.1fs, %.1fs);\n"
              "detector window = control period (250ms); remedy arm adds the\n"
              "remediation controller (quarantine/drain/restart + herd rebalance)\n",
              kNodes, kZones, kRacksPerZone, kRps, kFaultBegin, kFaultEnd);

  Table table({"point", "during good", "during p99", "post good", "post p99",
               "actions", "defer", "rollback"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const FleetFaultResult& r = results[i];
    table.AddRow({grid[i].name, Table::Num(PhaseGoodput(r, "during"), 0),
                  Table::Num(PhaseP99(r, "during"), 1),
                  Table::Num(PhaseGoodput(r, "post"), 0),
                  Table::Num(PhaseP99(r, "post"), 1),
                  std::to_string(r.remedy_actions),
                  std::to_string(r.remedy_deferrals),
                  std::to_string(r.remedy_rollbacks)});
  }
  table.Print();

  // Remediation action breakdown for the remedy points.
  Table actions({"point", "quar", "drain", "restart", "rebal", "rollbk",
                 "defer", "peak fleet", "peak zone", "justified", "unjust",
                 "injected"});
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridPoint& point = grid[i];
    if (!point.remediate) {
      continue;
    }
    const FleetFaultResult& r = results[i];
    actions.AddRow({point.name, std::to_string(r.remedy_quarantines),
                    std::to_string(r.remedy_drains),
                    std::to_string(r.remedy_restarts),
                    std::to_string(r.remedy_rebalances),
                    std::to_string(r.remedy_rollbacks),
                    std::to_string(r.remedy_deferrals),
                    std::to_string(r.remedy_peak_fleet_drains),
                    std::to_string(r.remedy_peak_zone_drains),
                    std::to_string(r.remedy_justified_actions),
                    std::to_string(r.remedy_unjustified_actions),
                    std::to_string(r.remedy_injected_actions)});
  }
  std::printf("\nRemediation actions (remedy arms):\n");
  actions.Print();

  // Action log for the heal_herd remedy point (first lines).
  for (size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].name != "heal_herd_remedy") {
      continue;
    }
    const FleetFaultResult& r = results[i];
    std::printf("\nheal_herd remediation log (%zu total):\n",
                r.remedy_lines.size());
    const size_t shown = std::min<size_t>(r.remedy_lines.size(), 12);
    for (size_t j = 0; j < shown; ++j) {
      std::printf("  %s\n", r.remedy_lines[j].c_str());
    }
    if (shown < r.remedy_lines.size()) {
      std::printf("  ... %zu more\n", r.remedy_lines.size() - shown);
    }
  }

  // Acceptance gates. Goodput ratios remedy/base over during+post; governor
  // caps; zero-touch healthy; full rollback of injected false positives.
  std::printf("\nAcceptance:\n");
  bool ok = true;
  for (const std::string& scenario : {std::string("stragglers"), std::string("heal_herd")}) {
    size_t base = grid.size();
    size_t remedy = grid.size();
    for (size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].scenario != scenario) continue;
      (grid[i].remediate ? remedy : base) = i;
    }
    if (base >= grid.size() || remedy >= grid.size()) {
      continue;  // filtered out via --scenario
    }
    for (const std::string& phase : {std::string("during"), std::string("post")}) {
      const double b = PhaseGoodput(results[base], phase);
      const double m = PhaseGoodput(results[remedy], phase);
      const double ratio = b > 0 ? m / b : 0;
      // >= 1.0 with float-dust tolerance: a dead tie must not flake the gate.
      const bool pass = ratio >= 0.9995;
      ok = ok && pass;
      const double bp = PhaseP99(results[base], phase);
      const double mp = PhaseP99(results[remedy], phase);
      std::printf("  %-10s %-6s goodput remedy/base = %.4f  p99 %.1f -> %.1f ms  [%s]\n",
                  scenario.c_str(), phase.c_str(), ratio, bp, mp,
                  pass ? "ok" : "FAIL");
      json.Metric(scenario + "_" + phase + "_goodput_ratio", ratio);
      json.Metric(scenario + "_" + phase + "_p99_base_ms", bp);
      json.Metric(scenario + "_" + phase + "_p99_remedy_ms", mp);
    }
  }
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridPoint& point = grid[i];
    const FleetFaultResult& r = results[i];
    if (point.name == "healthy") {
      const bool pass = r.remedy_actions == 0 && r.remedy_rebalances == 0;
      ok = ok && pass;
      std::printf("  healthy: actions=%llu rebalances=%llu  [%s]\n",
                  static_cast<unsigned long long>(r.remedy_actions),
                  static_cast<unsigned long long>(r.remedy_rebalances),
                  pass ? "ok" : "FAIL");
      json.Metric("healthy_zero_touch", pass ? 1.0 : 0.0);
    }
    if (point.name == "false_positive") {
      const uint64_t injected = r.remedy_injected_actions;
      const bool pass = injected > 0 && r.remedy_synthetic_rollbacks == injected;
      ok = ok && pass;
      std::printf("  false_positive: injected=%llu rolled back=%llu  [%s]\n",
                  static_cast<unsigned long long>(injected),
                  static_cast<unsigned long long>(r.remedy_synthetic_rollbacks),
                  pass ? "ok" : "FAIL");
      json.Metric("injected_rollback_fraction",
                  injected > 0
                      ? static_cast<double>(r.remedy_synthetic_rollbacks) /
                            static_cast<double>(injected)
                      : 0.0);
    }
    if (point.remediate) {
      const RemediationConfig rc = Remediation(point.scenario);
      const bool pass = r.remedy_peak_fleet_drains <= rc.max_drains_fleet &&
                        r.remedy_peak_zone_drains <= rc.max_drains_per_zone;
      ok = ok && pass;
      if (!pass) {
        std::printf("  %s: governor caps exceeded (fleet %d/%d, zone %d/%d)  [FAIL]\n",
                    point.name.c_str(), r.remedy_peak_fleet_drains,
                    rc.max_drains_fleet, r.remedy_peak_zone_drains,
                    rc.max_drains_per_zone);
      }
      json.Metric(point.name + "_peak_fleet_drains",
                  static_cast<double>(r.remedy_peak_fleet_drains));
      json.Metric(point.name + "_peak_zone_drains",
                  static_cast<double>(r.remedy_peak_zone_drains));
      json.Metric(point.name + "_actions", static_cast<double>(r.remedy_actions));
      json.Metric(point.name + "_deferrals",
                  static_cast<double>(r.remedy_deferrals));
      json.Metric(point.name + "_rollbacks",
                  static_cast<double>(r.remedy_rollbacks));
      json.Metric(point.name + "_rebalances",
                  static_cast<double>(r.remedy_rebalances));
      json.Metric(point.name + "_unjustified_actions",
                  static_cast<double>(r.remedy_unjustified_actions));
    }
    json.Metric(point.name + "_during_goodput", PhaseGoodput(r, "during"));
    json.Metric(point.name + "_post_goodput", PhaseGoodput(r, "post"));
    json.Metric(point.name + "_during_p99", PhaseP99(r, "during"));
    json.Metric(point.name + "_post_p99", PhaseP99(r, "post"));
  }
  std::printf("  all gates: [%s]\n", ok ? "ok" : "FAIL");
  json.Metric("all_gates_pass", ok ? 1.0 : 0.0);

  uint64_t total_events = 0;
  uint64_t total_scheduled = 0;
  for (const FleetFaultResult& r : results) {
    total_events += r.events_fired;
    total_scheduled += r.sim.scheduled;
  }
  std::printf("\nSimulated events across the grid: %llu fired / %llu scheduled\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_scheduled));
  json.Metric("total_events_fired", static_cast<double>(total_events));
  json.SetRun(runner.jobs(), runner.wall_seconds());
  json.WallMetric("sweep_wall_seconds", runner.wall_seconds());
  json.WallMetric("events_per_wall_second",
                  runner.wall_seconds() > 0 ? total_events / runner.wall_seconds() : 0.0);
  json.Write();
  bench::WriteTraceIfRequested(trace, opts);
  runner.PrintSummary("fleet_remediate");
  return 0;
}
